#include "dynamic/reschedule.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>
#include <vector>

#include "platform/load_balance.hpp"
#include "platform/routing.hpp"
#include "sched/interval.hpp"
#include "sched/timeline.hpp"
#include "util/error.hpp"
#include "util/matrix.hpp"

namespace oneport::dyn {
namespace {

using EdgeKey = std::pair<TaskId, TaskId>;

/// A pre-event chain for an edge whose endpoints are being rescheduled:
/// the hops that already started (they run to completion and occupy
/// their ports either way) plus whether the chain started in full (only
/// then can its delivery be reused).
struct OldChain {
  std::vector<CommPlacement> started;
  bool complete = false;
  bool reused = false;
};

/// Mutable state threaded through the event loop.
struct LoopState {
  std::vector<TaskPlacement> tasks;  ///< current placement per task
  std::map<EdgeKey, std::vector<CommPlacement>> live;  ///< delivering chains
  std::vector<CommPlacement> stale;  ///< retired (superseded) messages
  std::vector<double> cycle;         ///< effective cycle times
  std::vector<char> available;
  std::vector<char> known;
  std::vector<double> release;
};

/// The induced subgraph of the tasks being rescheduled, with id maps.
struct Residual {
  TaskGraph graph;
  std::vector<TaskId> to_orig;  ///< sub id -> original id
  std::vector<TaskId> to_sub;   ///< original id -> sub id (or kInvalidTask)
};

Residual build_residual(const TaskGraph& graph,
                        const std::vector<char>& in_set) {
  Residual res;
  res.to_sub.assign(graph.num_tasks(), kInvalidTask);
  // Insert in topological order: sub ids are then a deterministic pure
  // function of the residual set, independent of how it was discovered.
  for (const TaskId v : graph.topological_order()) {
    if (!in_set[v]) continue;
    res.to_sub[v] = res.graph.add_task(graph.weight(v), graph.name(v));
    res.to_orig.push_back(v);
  }
  for (const TaskId v : res.to_orig) {
    for (const EdgeRef& out : graph.successors(v)) {
      if (res.to_sub[out.task] != kInvalidTask) {
        res.graph.add_edge(res.to_sub[v], res.to_sub[out.task], out.data);
      }
    }
  }
  res.graph.finalize();
  return res;
}

/// The platform the heuristic sees: current cycle times, with dropped
/// processors penalized so no work lands there, links unchanged (the
/// network keeps relaying; only compute drops out).
Platform heuristic_platform(const Platform& base, const LoopState& st,
                            double drop_penalty) {
  const int p = base.num_processors();
  std::vector<double> cyc(static_cast<std::size_t>(p));
  for (ProcId q = 0; q < p; ++q) {
    cyc[static_cast<std::size_t>(q)] =
        st.available[static_cast<std::size_t>(q)]
            ? st.cycle[static_cast<std::size_t>(q)]
            : drop_penalty;
  }
  Matrix<double> link(static_cast<std::size_t>(p),
                      static_cast<std::size_t>(p));
  for (ProcId q = 0; q < p; ++q) {
    for (ProcId r = 0; r < p; ++r) {
      link(static_cast<std::size_t>(q), static_cast<std::size_t>(r)) =
          base.link(q, r);
    }
  }
  return Platform{std::move(cyc), std::move(link)};
}

/// earliest_joint_fit over committed timelines (no overlays needed: the
/// rebuild commits every hop as it goes).
double joint_fit(const TimelineIndex& send, const TimelineIndex& recv,
                 double ready, double duration) {
  if (duration <= kTimeEps) return ready;
  double cursor = ready;
  while (true) {
    const double cs = send.next_fit(cursor, duration);
    const double cr = recv.next_fit(cs, duration);
    if (cr <= cs + kTimeEps) return cs;
    cursor = cr;
  }
}

Schedule compose(const LoopState& st) {
  Schedule schedule(st.tasks.size());
  for (TaskId v = 0; v < st.tasks.size(); ++v) {
    const TaskPlacement& t = st.tasks[v];
    if (t.placed()) schedule.place_task(v, t.proc, t.start, t.finish);
  }
  for (const auto& [key, hops] : st.live) {
    for (const CommPlacement& c : hops) schedule.add_comm(c);
  }
  return schedule;
}

/// Fastest available processor (smallest cycle time, then smallest id) --
/// the deterministic fallback for residual tasks the heuristic or the
/// rebalancer left on an unavailable processor (only zero-weight tasks
/// ever tempt them there).
ProcId fastest_available(const LoopState& st) {
  ProcId best = -1;
  for (ProcId q = 0; q < static_cast<ProcId>(st.cycle.size()); ++q) {
    if (!st.available[static_cast<std::size_t>(q)]) continue;
    if (best < 0 || st.cycle[static_cast<std::size_t>(q)] <
                        st.cycle[static_cast<std::size_t>(best)]) {
      best = q;
    }
  }
  OP_ASSERT(best >= 0, "no available processor left");
  return best;
}

/// Rebuilds the residual tasks onto the frozen state.  `assignment` and
/// `order` come from the heuristic (plus rebalancing); `now` is the
/// freeze instant -- no new reservation may start before it.
void rebuild_suffix(const TaskGraph& graph, const Platform& base,
                    const RoutingTable* routing, CommModel model,
                    const Residual& res,
                    const std::vector<ProcId>& assignment,
                    const std::vector<TaskId>& order, double now,
                    std::map<EdgeKey, OldChain>& old_chains,
                    LoopState& st) {
  const int p = base.num_processors();
  const bool one_port = model == CommModel::kOnePort;
  std::vector<TimelineIndex> compute(static_cast<std::size_t>(p));
  std::vector<TimelineIndex> send(one_port ? static_cast<std::size_t>(p) : 0);
  std::vector<TimelineIndex> recv(one_port ? static_cast<std::size_t>(p) : 0);

  // Seed every reservation the past still owns: frozen compute slots,
  // live chains, started hops of superseded chains, and all previously
  // retired messages -- they all occupied (or still occupy) real ports.
  for (TaskId v = 0; v < graph.num_tasks(); ++v) {
    const TaskPlacement& t = st.tasks[v];
    if (t.placed()) {
      compute[static_cast<std::size_t>(t.proc)].reserve(t.start, t.finish);
    }
  }
  if (one_port) {
    const auto seed = [&](const CommPlacement& c) {
      send[static_cast<std::size_t>(c.from)].reserve(c.start, c.finish);
      recv[static_cast<std::size_t>(c.to)].reserve(c.start, c.finish);
    };
    for (const auto& [key, hops] : st.live) {
      for (const CommPlacement& c : hops) seed(c);
    }
    for (const auto& [key, chain] : old_chains) {
      for (const CommPlacement& c : chain.started) seed(c);
    }
    for (const CommPlacement& c : st.stale) seed(c);
  }

  // Predecessor scratch, mirroring the EFT engine's (finish asc, id asc)
  // order so chains contend for ports in the same sequence.
  std::vector<const EdgeRef*> preds;
  std::vector<ProcId> path;

  for (const TaskId sub : order) {
    const TaskId v = res.to_orig[sub];
    const ProcId proc = assignment[sub];
    OP_ASSERT(st.available[static_cast<std::size_t>(proc)],
              "task " << v << " rebuilt on dropped processor " << proc);

    preds.clear();
    for (const EdgeRef& e : graph.predecessors(v)) preds.push_back(&e);
    std::sort(preds.begin(), preds.end(),
              [&st](const EdgeRef* a, const EdgeRef* b) {
                const double fa = st.tasks[a->task].finish;
                const double fb = st.tasks[b->task].finish;
                if (fa != fb) return fa < fb;
                return a->task < b->task;
              });

    double arrival = std::max(st.release[v], now);
    for (const EdgeRef* e : preds) {
      const TaskId u = e->task;
      const TaskPlacement& src = st.tasks[u];
      OP_ASSERT(src.placed(),
                "predecessor " << u << " of " << v << " not placed yet");
      if (src.proc == proc) {
        arrival = std::max(arrival, src.finish);
        continue;
      }
      // Reuse the pre-event delivery when it started in full, its source
      // kept its placement, and the data already heads to this very
      // processor.
      const auto old = old_chains.find({u, v});
      if (old != old_chains.end() && old->second.complete &&
          res.to_sub[u] == kInvalidTask &&
          old->second.started.back().to == proc) {
        arrival = std::max(arrival, old->second.started.back().finish);
        old->second.reused = true;
        st.live[{u, v}] = old->second.started;
        continue;
      }
      // Fresh store-and-forward chain from the source's processor, first
      // hop no earlier than the freeze instant.
      path.clear();
      if (routing != nullptr) {
        routing->path_into(src.proc, proc, path);
      } else {
        path.push_back(src.proc);
        path.push_back(proc);
      }
      double cursor = std::max(src.finish, now);
      std::vector<CommPlacement>& chain = st.live[{u, v}];
      chain.clear();
      for (std::size_t h = 0; h + 1 < path.size(); ++h) {
        const ProcId a = path[h];
        const ProcId b = path[h + 1];
        const double duration = base.comm_time(e->data, a, b);
        OP_REQUIRE(std::isfinite(duration),
                   "no direct link P" << a << "->P" << b
                                      << " and no routing table provided");
        double start = cursor;
        if (one_port) {
          start = joint_fit(send[static_cast<std::size_t>(a)],
                            recv[static_cast<std::size_t>(b)], cursor,
                            duration);
          send[static_cast<std::size_t>(a)].reserve(start, start + duration);
          recv[static_cast<std::size_t>(b)].reserve(start, start + duration);
        }
        chain.push_back({u, v, a, b, start, start + duration});
        cursor = start + duration;
      }
      arrival = std::max(arrival, cursor);
    }

    const double exec =
        graph.weight(v) * st.cycle[static_cast<std::size_t>(proc)];
    const double start =
        compute[static_cast<std::size_t>(proc)].next_fit(arrival, exec);
    compute[static_cast<std::size_t>(proc)].reserve(start, start + exec);
    st.tasks[v] = TaskPlacement{proc, start, start + exec};
  }

  // Whatever old chains were not reused are now officially stale.
  for (auto& [key, chain] : old_chains) {
    if (chain.reused) continue;
    for (const CommPlacement& c : chain.started) st.stale.push_back(c);
  }
  old_chains.clear();
}

}  // namespace

DynamicResult run_dynamic(const TaskGraph& graph, const Platform& platform,
                          const std::string& scheduler,
                          const SchedulerConfig& config,
                          const EventTrace& trace,
                          const DynamicOptions& options) {
  OP_REQUIRE(graph.finalized(), "run_dynamic needs a finalized graph");
  validate_trace(trace, graph, platform);
  const SchedulerEntry entry = find_scheduler(scheduler, config);
  const int p = platform.num_processors();
  const std::size_t n = graph.num_tasks();

  LoopState st;
  st.tasks.assign(n, TaskPlacement{});
  st.cycle = platform.cycle_times();
  st.available.assign(static_cast<std::size_t>(p), 1);
  st.release = release_times(trace, graph);
  st.known.assign(n, 1);
  for (TaskId v = 0; v < n; ++v) st.known[v] = st.release[v] <= 0.0;

  DynamicResult result;
  result.release = st.release;

  // Schedules one epoch's residual set: the heuristic picks allocation
  // and order on the penalized platform, the optional rebalancing pass
  // shifts the allocation, and the constrained rebuild commits it.
  const auto reschedule = [&](const std::vector<char>& in_set, double now,
                              std::map<EdgeKey, OldChain>& old_chains,
                              EpochSnapshot& snap) {
    const Residual res = build_residual(graph, in_set);
    snap.suffix_tasks = static_cast<int>(res.to_orig.size());
    if (res.to_orig.empty()) {
      old_chains.clear();
      return;
    }
    const Platform seen = heuristic_platform(platform, st,
                                             options.drop_penalty);
    const Schedule plan = entry.run(res.graph, seen);

    std::vector<ProcId> assignment(res.to_orig.size(), -1);
    std::vector<double> weights(res.to_orig.size(), 0.0);
    for (TaskId sub = 0; sub < res.to_orig.size(); ++sub) {
      ProcId q = plan.task(sub).proc;
      if (!st.available[static_cast<std::size_t>(q)]) {
        q = fastest_available(st);
      }
      assignment[sub] = q;
      weights[sub] = res.graph.weight(sub);
    }
    snap.imbalance_before = fractional_load_imbalance(
        seen, [&] {
          std::vector<double> loads(static_cast<std::size_t>(p), 0.0);
          for (TaskId sub = 0; sub < res.to_orig.size(); ++sub) {
            loads[static_cast<std::size_t>(assignment[sub])] += weights[sub];
          }
          return loads;
        }());
    snap.imbalance_after = snap.imbalance_before;
    if (options.rebalance) {
      const RebalanceStats stats =
          rebalance_assignment(seen, weights, assignment);
      snap.imbalance_after = stats.imbalance_after;
      snap.rebalance_moves = stats.moves;
    }

    // Rebuild in (heuristic start, sub topo index) order: valid plans
    // finish a predecessor no later than a successor starts, so this
    // order is precedence-safe, and the topo tie-break pins zero-weight
    // stacks.
    std::vector<TaskId> order(res.to_orig.size());
    for (TaskId sub = 0; sub < order.size(); ++sub) order[sub] = sub;
    std::sort(order.begin(), order.end(), [&plan](TaskId a, TaskId b) {
      const double sa = plan.task(a).start;
      const double sb = plan.task(b).start;
      if (sa != sb) return sa < sb;
      return a < b;
    });
    rebuild_suffix(graph, platform, config.routing, options.model, res,
                   assignment, order, now, old_chains, st);
  };

  const auto snapshot = [&](EpochSnapshot&& snap) {
    snap.cycle_times = st.cycle;
    snap.available = st.available;
    snap.known = st.known;
    snap.schedule = compose(st);
    snap.stale_comms = st.stale;
    result.epochs.push_back(std::move(snap));
  };

  // ---- epoch 0: the initial static schedule over the known set.
  {
    EpochSnapshot snap;
    std::map<EdgeKey, OldChain> no_chains;
    bool all_known = true;
    for (const char k : st.known) all_known &= k != 0;
    if (all_known && !options.rebalance) {
      // Fast path doubling as the static-equivalence anchor: with no
      // late arrivals and no rebalancing, epoch 0 *is* the heuristic's
      // schedule, bit for bit.
      const Schedule plan = entry.run(graph, platform);
      for (TaskId v = 0; v < n; ++v) st.tasks[v] = plan.task(v);
      for (const CommPlacement& c : plan.comms()) {
        st.live[{c.src, c.dst}].push_back(c);
      }
      snap.suffix_tasks = static_cast<int>(n);
    } else {
      reschedule(st.known, 0.0, no_chains, snap);
    }
    snapshot(std::move(snap));
  }

  // ---- one epoch per event.
  for (const PlatformEvent& event : trace) {
    const double now = event.time;
    EpochSnapshot snap;
    snap.event = event;
    snap.time = now;

    switch (event.kind) {
      case EventKind::kSlowdown:
        st.cycle[static_cast<std::size_t>(event.proc)] *= event.factor;
        break;
      case EventKind::kDropout:
        st.available[static_cast<std::size_t>(event.proc)] = 0;
        break;
      case EventKind::kArrival:
        for (const TaskId v : event.tasks) st.known[v] = 1;
        break;
    }

    // Freeze: anything that started strictly before the event keeps its
    // slot; everything else (plus fresh arrivals) goes back in the pool.
    std::vector<char> residual(n, 0);
    for (TaskId v = 0; v < n; ++v) {
      if (!st.known[v]) continue;
      const TaskPlacement& t = st.tasks[v];
      if (!t.placed() || t.start >= now - kTimeEps) {
        residual[v] = 1;
        st.tasks[v] = TaskPlacement{};
      }
    }

    // Chains touching a rescheduled endpoint: hops that never started
    // vanish, hops that did run to completion but stop delivering --
    // unless the whole chain started and still points at the right
    // destination, in which case rebuild_suffix may re-adopt it.
    std::map<EdgeKey, OldChain> old_chains;
    for (auto it = st.live.begin(); it != st.live.end();) {
      const auto [u, v] = it->first;
      if (!residual[u] && !residual[v]) {
        ++it;
        continue;
      }
      OldChain& old = old_chains[it->first];
      for (const CommPlacement& c : it->second) {
        if (c.start < now - kTimeEps) old.started.push_back(c);
      }
      old.complete =
          !old.started.empty() && old.started.size() == it->second.size();
      it = st.live.erase(it);
    }

    reschedule(residual, now, old_chains, snap);
    snapshot(std::move(snap));
  }

  result.schedule = result.epochs.back().schedule;
  result.stale_comms = st.stale;
  return result;
}

}  // namespace oneport::dyn
