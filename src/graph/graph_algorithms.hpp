// Classic DAG computations used by the scheduling heuristics.
//
// Bottom/top levels are parameterized by two scalar factors instead of a
// Platform so that the graph layer stays platform-agnostic:
//   * comp_factor -- multiplies task weights.  For heterogeneous platforms
//     the paper (§4.1) uses the harmonic mean of the cycle-times,
//     H(t) = p / sum(1/t_i).
//   * comm_factor -- multiplies edge data volumes.  The paper uses the
//     harmonic mean of the off-diagonal link entries.
// All communications are charged, even when endpoints might later be
// co-located (the paper's conservative choice).
#pragma once

#include <vector>

#include "graph/task_graph.hpp"

namespace oneport {

/// bottom_level(v) = time of the longest path from v to any exit node,
/// counting v's own (averaged) execution time and every (averaged)
/// communication along the path.  Higher = more urgent.
[[nodiscard]] std::vector<double> bottom_levels(const TaskGraph& g,
                                                double comp_factor,
                                                double comm_factor);

/// top_level(v) = longest path length from any entry node to v, excluding
/// v's own execution time.
[[nodiscard]] std::vector<double> top_levels(const TaskGraph& g,
                                             double comp_factor,
                                             double comm_factor);

/// Iso-levels as used by ILHA's graph splitting (§4.2): entry tasks are at
/// level 0 and level(v) = 1 + max over predecessors.  Tasks sharing a level
/// are pairwise independent.
[[nodiscard]] std::vector<int> iso_levels(const TaskGraph& g);

/// Tasks of the longest (averaged) path in the graph, entry to exit, plus
/// its length.  Deterministic: ties resolved toward smaller task ids.
struct CriticalPath {
  std::vector<TaskId> tasks;
  double length = 0.0;
};
[[nodiscard]] CriticalPath critical_path(const TaskGraph& g,
                                         double comp_factor,
                                         double comm_factor);

/// Maximum number of pairwise-independent tasks in any single iso-level
/// (a cheap lower-proxy for graph width).
[[nodiscard]] std::size_t max_level_width(const TaskGraph& g);

}  // namespace oneport
