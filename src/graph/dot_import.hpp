// Trace ingestion: DOT and JSON task-graph importers, the exact inverses
// of graph/dot_export (DOT) and write_json_graph below (JSON).
//
// Round-trip contract (pinned by tests/import_test.cpp):
//   * export -> import -> export is BYTE-IDENTICAL for any finalized
//     graph that fits the exporter's node cap, in both formats;
//   * import -> export -> import reproduces the same graph (weights,
//     names, edge order and data volumes compared exactly).
//
// Strictness contract: a malformed input NEVER produces a graph and
// NEVER trips undefined behavior -- every rejection is a typed
// ImportError whose Kind says what went wrong (syntax, duplicate node,
// dangling edge, bad weight, cycle, truncated export, ...), so callers
// and tests can assert the *reason*, not just "it threw".  Inputs are
// parsed fully before a TaskGraph is built; nothing is silently
// repaired or skipped.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "graph/task_graph.hpp"

namespace oneport {

/// Typed rejection for malformed trace files.  `kind()` classifies the
/// failure; what() carries the human-readable detail (line/offset where
/// applicable).
class ImportError : public std::runtime_error {
 public:
  enum class Kind {
    kIo,             ///< file missing/unreadable
    kSyntax,         ///< grammar violation (incl. truncated text)
    kTruncatedDump,  ///< exporter wrote a "// truncated" partial graph
    kDuplicateNode,  ///< node id declared twice
    kUnknownNode,    ///< edge endpoint never declared (dangling edge)
    kBadWeight,      ///< NaN / negative / unparsable weight or data
    kDuplicateEdge,  ///< same src->dst twice, or a self-loop
    kCycle,          ///< edges form a cycle; not a DAG
  };

  ImportError(Kind kind, const std::string& message)
      : std::runtime_error(message), kind_(kind) {}

  [[nodiscard]] Kind kind() const noexcept { return kind_; }

 private:
  Kind kind_;
};

/// Human-readable name of an ImportError::Kind ("syntax", "cycle", ...).
[[nodiscard]] const char* import_error_kind_name(ImportError::Kind kind);

/// An imported graph plus the metadata needed to re-export it verbatim.
struct ImportedGraph {
  TaskGraph graph;         ///< finalized
  std::string graph_name;  ///< the digraph / "name" header value
};

/// Parses the Graphviz DOT dialect write_dot emits (default options:
/// show_weights on).  Node labels of the canonical "v<id>" form map back
/// to the empty task name, exactly undoing the exporter's placeholder.
[[nodiscard]] ImportedGraph import_dot(const std::string& text);

/// JSON inverse of write_json_graph.
[[nodiscard]] ImportedGraph import_json(const std::string& text);

/// Sniffs the format (first non-whitespace byte: '{' = JSON, else DOT)
/// and dispatches.  Empty/whitespace-only input is a syntax error.
[[nodiscard]] ImportedGraph import_task_graph(const std::string& text);

/// Reads `path` and imports it via import_task_graph.  A missing or
/// unreadable file is ImportError{kIo}.
[[nodiscard]] ImportedGraph load_task_graph(const std::string& path);

/// JSON export, the counterpart of write_dot: a {"name", "tasks",
/// "edges"} document with weights/data rendered through the same
/// csv::format_number the DOT exporter uses, so both formats round-trip
/// byte-identically through their importers.
struct JsonGraphOptions {
  std::string graph_name = "taskgraph";
};
void write_json_graph(std::ostream& os, const TaskGraph& g,
                      const JsonGraphOptions& options = {});

}  // namespace oneport
