#include "graph/dot_import.hpp"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>
#include <utility>
#include <vector>

#include "util/csv.hpp"
#include "util/error.hpp"

namespace oneport {

namespace {

using Kind = ImportError::Kind;

[[noreturn]] void fail(Kind kind, const std::string& message) {
  throw ImportError(kind, std::string(import_error_kind_name(kind)) + ": " +
                              message);
}

/// Parsed node/edge staging area: the whole file is read and validated
/// before any TaskGraph is built, so a late error cannot leave a
/// half-imported graph behind.
struct Staging {
  std::string graph_name;
  // Node ids as declared; must form the dense range 0..N-1 once all are
  // in (the exporters only ever emit dense ids).
  std::vector<std::pair<std::uint64_t, std::pair<double, std::string>>> nodes;
  std::vector<std::pair<std::pair<std::uint64_t, std::uint64_t>, double>>
      edges;
};

/// Full-consumption double parse; rejects NaN/inf and anything strtod
/// leaves behind.  `what` names the field for the error message.
double parse_weight(const std::string& text, const char* what) {
  if (text.empty()) fail(Kind::kBadWeight, std::string(what) + " is empty");
  const char* begin = text.c_str();
  char* end = nullptr;
  const double value = std::strtod(begin, &end);
  if (end != begin + text.size()) {
    fail(Kind::kBadWeight,
         std::string(what) + " '" + text + "' is not a number");
  }
  if (!std::isfinite(value)) {
    fail(Kind::kBadWeight, std::string(what) + " '" + text +
                               "' is not finite (NaN/inf rejected)");
  }
  if (value < 0.0) {
    fail(Kind::kBadWeight, std::string(what) + " '" + text + "' is negative");
  }
  return value;
}

std::uint64_t parse_node_id(const std::string& text, const char* what) {
  if (text.empty() || text.find_first_not_of("0123456789") != std::string::npos)
    fail(Kind::kSyntax, std::string(what) + " '" + text +
                            "' is not an unsigned node index");
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size())
    fail(Kind::kSyntax, std::string(what) + " '" + text + "' overflows");
  return value;
}

/// Builds the final graph from a fully-parsed staging area, enforcing
/// the structural rules shared by both formats: dense ids, no
/// duplicates, no dangling edges, no self-loops, acyclic.
ImportedGraph realize(Staging&& staged) {
  const std::size_t n = staged.nodes.size();
  std::vector<bool> seen(n, false);
  std::vector<std::pair<double, std::string>> by_id(n);
  for (auto& [id, payload] : staged.nodes) {
    if (id >= n) {
      fail(Kind::kUnknownNode,
           "node id " + std::to_string(id) + " is outside the dense range 0.." +
               std::to_string(n == 0 ? 0 : n - 1) +
               " (missing declarations?)");
    }
    if (seen[static_cast<std::size_t>(id)]) {
      fail(Kind::kDuplicateNode,
           "node id " + std::to_string(id) + " declared twice");
    }
    seen[static_cast<std::size_t>(id)] = true;
    by_id[static_cast<std::size_t>(id)] = std::move(payload);
  }

  TaskGraph graph;
  for (std::size_t v = 0; v < n; ++v) {
    graph.add_task(by_id[v].first, std::move(by_id[v].second));
  }
  for (const auto& [endpoints, data] : staged.edges) {
    const auto [src, dst] = endpoints;
    if (src >= n || dst >= n) {
      fail(Kind::kUnknownNode,
           "edge " + std::to_string(src) + "->" + std::to_string(dst) +
               " references an undeclared node");
    }
    if (src == dst) {
      fail(Kind::kDuplicateEdge,
           "self-loop on node " + std::to_string(src));
    }
    const auto s = static_cast<TaskId>(src);
    const auto d = static_cast<TaskId>(dst);
    if (graph.has_edge(s, d)) {
      fail(Kind::kDuplicateEdge, "edge " + std::to_string(src) + "->" +
                                     std::to_string(dst) + " declared twice");
    }
    graph.add_edge(s, d, data);
  }
  try {
    graph.finalize();
  } catch (const std::invalid_argument& e) {
    fail(Kind::kCycle, e.what());
  }
  return {std::move(graph), std::move(staged.graph_name)};
}

// --------------------------------------------------------------- DOT

/// Strips leading/trailing spaces and tabs.
std::string trimmed(const std::string& line) {
  const std::size_t first = line.find_first_not_of(" \t\r");
  if (first == std::string::npos) return {};
  const std::size_t last = line.find_last_not_of(" \t\r");
  return line.substr(first, last - first + 1);
}

/// True when `text` looks like the exporter's canonical placeholder for
/// an unnamed task: "v<id>".  Importing it as the empty name makes
/// export -> import the identity on unnamed tasks (and stays
/// re-export-stable for tasks literally named "v<id>").
bool is_placeholder_name(const std::string& name, std::uint64_t id) {
  std::string expected("v");
  expected += std::to_string(id);
  return name == expected;
}

ImportedGraph import_dot_impl(const std::string& text) {
  std::istringstream in(text);
  Staging staged;
  std::string line;
  bool saw_header = false;
  bool saw_close = false;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string t = trimmed(line);
    const std::string where = " (line " + std::to_string(line_no) + ")";
    if (t.empty()) continue;
    if (!saw_header) {
      if (t.rfind("digraph ", 0) != 0 || t.back() != '{') {
        fail(Kind::kSyntax, "expected 'digraph <name> {' header" + where);
      }
      staged.graph_name = trimmed(t.substr(8, t.size() - 9));
      if (staged.graph_name.empty()) {
        fail(Kind::kSyntax, "digraph name is empty" + where);
      }
      saw_header = true;
      continue;
    }
    if (saw_close) fail(Kind::kSyntax, "content after closing '}'" + where);
    if (t == "}") {
      saw_close = true;
      continue;
    }
    // Style lines the exporter emits; carry no graph content.
    if (t == "rankdir=TB;" || t == "node [shape=circle];") continue;
    if (t.rfind("// truncated", 0) == 0) {
      fail(Kind::kTruncatedDump,
           "the exporter truncated this dump; it cannot be reimported" +
               where);
    }
    if (t.rfind("//", 0) == 0) continue;  // other comments are inert
    if (t.rfind('n', 0) != 0) {
      fail(Kind::kSyntax, "unrecognized statement '" + t + "'" + where);
    }
    const std::size_t arrow = t.find(" -> ");
    if (arrow == std::string::npos) {
      // Node statement: n<id> [label="<name>\nw=<weight>"];
      const std::string prefix = "[label=\"";
      const std::size_t lbracket = t.find(" [");
      if (lbracket == std::string::npos || t.rfind("\"];") != t.size() - 3) {
        fail(Kind::kSyntax, "malformed node statement '" + t + "'" + where);
      }
      if (t.compare(lbracket + 1, prefix.size(), prefix) != 0) {
        fail(Kind::kSyntax, "malformed node label in '" + t + "'" + where);
      }
      const std::uint64_t id =
          parse_node_id(t.substr(1, lbracket - 1), "node id");
      const std::string label = t.substr(lbracket + 1 + prefix.size(),
                                         t.size() - 3 -
                                             (lbracket + 1 + prefix.size()));
      const std::size_t wsep = label.rfind("\\nw=");
      if (wsep == std::string::npos) {
        fail(Kind::kSyntax, "node label '" + label +
                                "' carries no \\nw=<weight> field (export "
                                "with show_weights on)" +
                                where);
      }
      std::string name = label.substr(0, wsep);
      const double weight = parse_weight(label.substr(wsep + 4), "weight");
      if (is_placeholder_name(name, id)) name.clear();
      staged.nodes.push_back({id, {weight, std::move(name)}});
    } else {
      // Edge statement: n<a> -> n<b> [label="<data>"];
      const std::string rhs = t.substr(arrow + 4);
      const std::size_t lbracket = rhs.find(" [label=\"");
      if (lbracket == std::string::npos || rhs.rfind("\"];") != rhs.size() - 3 ||
          rhs.rfind('n', 0) != 0) {
        fail(Kind::kSyntax, "malformed edge statement '" + t + "'" + where);
      }
      const std::uint64_t src =
          parse_node_id(t.substr(1, arrow - 1), "edge source");
      const std::uint64_t dst =
          parse_node_id(rhs.substr(1, lbracket - 1), "edge target");
      const std::string data_text = rhs.substr(
          lbracket + 9, rhs.size() - 3 - (lbracket + 9));
      const double data = parse_weight(data_text, "edge data");
      staged.edges.push_back({{src, dst}, data});
    }
  }
  if (!saw_header) fail(Kind::kSyntax, "empty input: no digraph header");
  if (!saw_close) fail(Kind::kSyntax, "unterminated digraph: missing '}'");
  return realize(std::move(staged));
}

// --------------------------------------------------------------- JSON

/// Minimal recursive-descent parser for the restricted JSON the graph
/// exporter emits: objects, arrays, strings (\" and \\ escapes), and
/// plain numbers.  Any deviation is a typed syntax error with the byte
/// offset; there is no recovery and no extension.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  [[nodiscard]] ImportedGraph parse() {
    skip_ws();
    expect('{');
    Staging staged;
    bool saw_tasks = false;
    bool saw_edges = false;
    bool first = true;
    while (true) {
      skip_ws();
      if (peek() == '}') break;
      if (!first) {
        expect(',');
        skip_ws();
      }
      first = false;
      const std::string key = parse_string("object key");
      skip_ws();
      expect(':');
      skip_ws();
      if (key == "name") {
        staged.graph_name = parse_string("graph name");
      } else if (key == "tasks") {
        saw_tasks = true;
        parse_tasks(staged);
      } else if (key == "edges") {
        saw_edges = true;
        parse_edges(staged);
      } else {
        fail(Kind::kSyntax, "unknown key '" + key + "'" + at());
      }
    }
    expect('}');
    skip_ws();
    if (pos_ != text_.size()) fail(Kind::kSyntax, "content after root object" + at());
    if (staged.graph_name.empty()) {
      fail(Kind::kSyntax, "missing or empty \"name\"");
    }
    if (!saw_tasks || !saw_edges) {
      fail(Kind::kSyntax, "document needs both \"tasks\" and \"edges\"");
    }
    return realize(std::move(staged));
  }

 private:
  [[nodiscard]] std::string at() const {
    return " (offset " + std::to_string(pos_) + ")";
  }

  [[nodiscard]] char peek() const {
    if (pos_ >= text_.size()) fail(Kind::kSyntax, "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(Kind::kSyntax, std::string("expected '") + c + "', got '" +
                              peek() + "'" + at());
    }
    ++pos_;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string parse_string(const char* what) {
    if (peek() != '"') {
      fail(Kind::kSyntax, std::string(what) + " must be a string" + at());
    }
    ++pos_;
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c == '\\') {
        const char esc = peek();
        ++pos_;
        if (esc == '"' || esc == '\\') {
          out += esc;
        } else if (esc == 'n') {
          out += '\n';
        } else {
          fail(Kind::kSyntax,
               std::string("unsupported escape '\\") + esc + "'" + at());
        }
      } else {
        out += c;
      }
    }
  }

  double parse_number(const char* what, Kind bad_kind) {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == 'n' ||
            text_[pos_] == 'a' || text_[pos_] == 'i' || text_[pos_] == 'f')) {
      ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (token.empty()) {
      fail(Kind::kSyntax, std::string(what) + " must be a number" + at());
    }
    if (bad_kind == Kind::kBadWeight) return parse_weight(token, what);
    // Node indices: reuse the shared id grammar.
    return static_cast<double>(parse_node_id(token, what));
  }

  void parse_tasks(Staging& staged) {
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return;
    }
    while (true) {
      expect('{');
      std::uint64_t id = 0;
      bool saw_id = false;
      double weight = 0.0;
      bool saw_weight = false;
      std::string name;
      bool first = true;
      while (true) {
        skip_ws();
        if (peek() == '}') break;
        if (!first) {
          expect(',');
          skip_ws();
        }
        first = false;
        const std::string key = parse_string("task key");
        skip_ws();
        expect(':');
        skip_ws();
        if (key == "id") {
          id = static_cast<std::uint64_t>(
              parse_number("task id", Kind::kSyntax));
          saw_id = true;
        } else if (key == "w") {
          weight = parse_number("task weight", Kind::kBadWeight);
          saw_weight = true;
        } else if (key == "name") {
          name = parse_string("task name");
        } else {
          fail(Kind::kSyntax, "unknown task key '" + key + "'" + at());
        }
      }
      expect('}');
      if (!saw_id || !saw_weight) {
        fail(Kind::kSyntax, "task entry needs \"id\" and \"w\"" + at());
      }
      staged.nodes.push_back({id, {weight, std::move(name)}});
      skip_ws();
      if (peek() == ']') break;
      expect(',');
      skip_ws();
    }
    expect(']');
  }

  void parse_edges(Staging& staged) {
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return;
    }
    while (true) {
      expect('{');
      std::uint64_t src = 0;
      std::uint64_t dst = 0;
      double data = 0.0;
      bool saw_src = false;
      bool saw_dst = false;
      bool saw_data = false;
      bool first = true;
      while (true) {
        skip_ws();
        if (peek() == '}') break;
        if (!first) {
          expect(',');
          skip_ws();
        }
        first = false;
        const std::string key = parse_string("edge key");
        skip_ws();
        expect(':');
        skip_ws();
        if (key == "src") {
          src = static_cast<std::uint64_t>(
              parse_number("edge src", Kind::kSyntax));
          saw_src = true;
        } else if (key == "dst") {
          dst = static_cast<std::uint64_t>(
              parse_number("edge dst", Kind::kSyntax));
          saw_dst = true;
        } else if (key == "data") {
          data = parse_number("edge data", Kind::kBadWeight);
          saw_data = true;
        } else {
          fail(Kind::kSyntax, "unknown edge key '" + key + "'" + at());
        }
      }
      expect('}');
      if (!saw_src || !saw_dst || !saw_data) {
        fail(Kind::kSyntax,
             "edge entry needs \"src\", \"dst\" and \"data\"" + at());
      }
      staged.edges.push_back({{src, dst}, data});
      skip_ws();
      if (peek() == ']') break;
      expect(',');
      skip_ws();
    }
    expect(']');
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

/// JSON string escaping for task/graph names (the exporter's inverse of
/// JsonParser::parse_string).
std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

}  // namespace

const char* import_error_kind_name(ImportError::Kind kind) {
  switch (kind) {
    case Kind::kIo: return "io";
    case Kind::kSyntax: return "syntax";
    case Kind::kTruncatedDump: return "truncated-dump";
    case Kind::kDuplicateNode: return "duplicate-node";
    case Kind::kUnknownNode: return "unknown-node";
    case Kind::kBadWeight: return "bad-weight";
    case Kind::kDuplicateEdge: return "duplicate-edge";
    case Kind::kCycle: return "cycle";
  }
  return "unknown";
}

ImportedGraph import_dot(const std::string& text) {
  return import_dot_impl(text);
}

ImportedGraph import_json(const std::string& text) {
  return JsonParser(text).parse();
}

ImportedGraph import_task_graph(const std::string& text) {
  for (const char c : text) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') continue;
    return c == '{' ? import_json(text) : import_dot(text);
  }
  fail(Kind::kSyntax, "empty input");
}

ImportedGraph load_task_graph(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) fail(Kind::kIo, "cannot open '" + path + "' for reading");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) fail(Kind::kIo, "read error on '" + path + "'");
  try {
    return import_task_graph(buffer.str());
  } catch (const ImportError& e) {
    throw ImportError(e.kind(), std::string(e.what()) + " in '" + path + "'");
  }
}

void write_json_graph(std::ostream& os, const TaskGraph& g,
                      const JsonGraphOptions& options) {
  OP_REQUIRE(g.finalized(), "graph must be finalized");
  os << "{\n  \"name\": \"" << json_escape(options.graph_name) << "\",\n";
  os << "  \"tasks\": [";
  for (TaskId v = 0; v < g.num_tasks(); ++v) {
    os << (v == 0 ? "\n" : ",\n") << "    {\"id\": " << v << ", \"w\": "
       << csv::format_number(g.weight(v));
    if (!g.name(v).empty()) {
      os << ", \"name\": \"" << json_escape(g.name(v)) << "\"";
    }
    os << "}";
  }
  os << "\n  ],\n  \"edges\": [";
  bool first = true;
  for (TaskId v = 0; v < g.num_tasks(); ++v) {
    for (const EdgeRef& e : g.successors(v)) {
      os << (first ? "\n" : ",\n") << "    {\"src\": " << v
         << ", \"dst\": " << e.task << ", \"data\": "
         << csv::format_number(e.data) << "}";
      first = false;
    }
  }
  os << "\n  ]\n}\n";
}

}  // namespace oneport
