// Graphviz DOT export for task graphs -- handy for debugging testbed
// generators and for documentation figures.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/task_graph.hpp"

namespace oneport {

struct DotOptions {
  /// Graph name emitted in the digraph header.
  std::string graph_name = "taskgraph";
  /// Include w(v) in node labels and data(u,v) on edge labels.
  bool show_weights = true;
  /// Cap on emitted nodes; larger graphs are truncated with a warning
  /// comment (DOT rendering of 10^5-node graphs is not useful).
  std::size_t max_tasks = 2000;
};

/// Writes `g` in Graphviz DOT syntax to `os`.
void write_dot(std::ostream& os, const TaskGraph& g,
               const DotOptions& options = {});

}  // namespace oneport
