#include "graph/graph_algorithms.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace oneport {

std::vector<double> bottom_levels(const TaskGraph& g, double comp_factor,
                                  double comm_factor) {
  OP_REQUIRE(g.finalized(), "graph must be finalized");
  const auto order = g.topological_order();
  std::vector<double> bl(g.num_tasks(), 0.0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const TaskId v = *it;
    double best = 0.0;
    for (const EdgeRef& e : g.successors(v)) {
      best = std::max(best, e.data * comm_factor + bl[e.task]);
    }
    bl[v] = g.weight(v) * comp_factor + best;
  }
  return bl;
}

std::vector<double> top_levels(const TaskGraph& g, double comp_factor,
                               double comm_factor) {
  OP_REQUIRE(g.finalized(), "graph must be finalized");
  std::vector<double> tl(g.num_tasks(), 0.0);
  for (const TaskId v : g.topological_order()) {
    double best = 0.0;
    for (const EdgeRef& e : g.predecessors(v)) {
      best = std::max(best, tl[e.task] + g.weight(e.task) * comp_factor +
                                e.data * comm_factor);
    }
    tl[v] = best;
  }
  return tl;
}

std::vector<int> iso_levels(const TaskGraph& g) {
  OP_REQUIRE(g.finalized(), "graph must be finalized");
  std::vector<int> level(g.num_tasks(), 0);
  for (const TaskId v : g.topological_order()) {
    int best = -1;
    for (const EdgeRef& e : g.predecessors(v)) {
      best = std::max(best, level[e.task]);
    }
    level[v] = best + 1;
  }
  return level;
}

CriticalPath critical_path(const TaskGraph& g, double comp_factor,
                           double comm_factor) {
  OP_REQUIRE(g.finalized(), "graph must be finalized");
  const std::vector<double> bl = bottom_levels(g, comp_factor, comm_factor);
  CriticalPath cp;
  if (g.num_tasks() == 0) return cp;

  // Start from the entry task with the largest bottom level (smallest id on
  // ties), then repeatedly follow the successor that realizes the level.
  TaskId current = kInvalidTask;
  for (const TaskId v : g.entry_tasks()) {
    if (current == kInvalidTask || bl[v] > bl[current]) current = v;
  }
  cp.length = bl[current];
  while (true) {
    cp.tasks.push_back(current);
    const double remaining = bl[current] - g.weight(current) * comp_factor;
    TaskId next = kInvalidTask;
    for (const EdgeRef& e : g.successors(current)) {
      const double via = e.data * comm_factor + bl[e.task];
      // The successor lying on the longest path satisfies via == remaining
      // up to floating-point noise; prefer the smallest id among them.
      if (via >= remaining - 1e-9 * (1.0 + std::abs(remaining))) {
        if (next == kInvalidTask || e.task < next) next = e.task;
      }
    }
    if (next == kInvalidTask) break;
    current = next;
  }
  return cp;
}

std::size_t max_level_width(const TaskGraph& g) {
  const std::vector<int> level = iso_levels(g);
  std::vector<std::size_t> count;
  for (const int l : level) {
    if (static_cast<std::size_t>(l) >= count.size())
      count.resize(static_cast<std::size_t>(l) + 1, 0);
    ++count[static_cast<std::size_t>(l)];
  }
  std::size_t best = 0;
  for (const std::size_t c : count) best = std::max(best, c);
  return best;
}

}  // namespace oneport
