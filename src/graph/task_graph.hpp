// Directed acyclic task graph: the application model of the paper (§2.1).
//
// A TaskGraph is a vertex-weighted, edge-weighted DAG G = (V, E, w, data):
//   * w(v)       -- computation cost of task v (abstract cycles); the time
//                   to run v on processor P_i is w(v) * t_i.
//   * data(u,v)  -- number of data items shipped from u to v; the transfer
//                   time between P_q and P_r is data(u,v) * link(q,r).
//
// The graph is built incrementally (add_task / add_edge) and then
// finalize()d, which checks acyclicity, computes a topological order and
// freezes the structure.  All algorithms require a finalized graph.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace oneport {

using TaskId = std::uint32_t;
inline constexpr TaskId kInvalidTask = static_cast<TaskId>(-1);

/// One endpoint of an edge as seen from a vertex: the neighbor task plus
/// the communication volume carried by the edge.
struct EdgeRef {
  TaskId task;
  double data;
};

class TaskGraph {
 public:
  TaskGraph() = default;

  /// Creates a task with computation cost `weight` (>= 0) and an optional
  /// display name; returns its id (ids are dense, starting at 0).
  TaskId add_task(double weight, std::string name = {});

  /// Adds the precedence edge src -> dst carrying `data` (>= 0) items.
  /// Duplicate edges and self-loops are rejected.
  void add_edge(TaskId src, TaskId dst, double data);

  /// Freezes the graph: verifies acyclicity and computes the topological
  /// order returned by topological_order().  Throws std::invalid_argument
  /// if the graph has a cycle.  Idempotent.
  void finalize();

  [[nodiscard]] bool finalized() const noexcept { return finalized_; }
  [[nodiscard]] std::size_t num_tasks() const noexcept {
    return weights_.size();
  }
  [[nodiscard]] std::size_t num_edges() const noexcept { return num_edges_; }

  // weight/successors/predecessors are defined inline: the EFT engine
  // hits them millions of times per schedule, and the call overhead of
  // out-of-line accessors is measurable at 10k+ tasks.
  [[nodiscard]] double weight(TaskId v) const {
    check_task(v);
    return weights_[v];
  }
  [[nodiscard]] const std::string& name(TaskId v) const;
  /// Sum of all task weights (the total work W of the application).
  [[nodiscard]] double total_weight() const noexcept { return total_weight_; }

  [[nodiscard]] std::span<const EdgeRef> successors(TaskId v) const {
    check_task(v);
    return succ_[v];
  }
  [[nodiscard]] std::span<const EdgeRef> predecessors(TaskId v) const {
    check_task(v);
    return pred_[v];
  }
  [[nodiscard]] std::size_t in_degree(TaskId v) const {
    return predecessors(v).size();
  }
  [[nodiscard]] std::size_t out_degree(TaskId v) const {
    return successors(v).size();
  }

  /// Communication volume on edge src->dst; throws if the edge is absent.
  [[nodiscard]] double edge_data(TaskId src, TaskId dst) const;
  [[nodiscard]] bool has_edge(TaskId src, TaskId dst) const;

  /// Topological order (requires finalized()).
  [[nodiscard]] std::span<const TaskId> topological_order() const;

  /// Tasks with no predecessors / successors (requires finalized()).
  [[nodiscard]] std::vector<TaskId> entry_tasks() const;
  [[nodiscard]] std::vector<TaskId> exit_tasks() const;

 private:
  void check_task(TaskId v) const {
    OP_REQUIRE(v < num_tasks(), "task id " << v << " out of range");
  }

  std::vector<double> weights_;
  std::vector<std::string> names_;
  std::vector<std::vector<EdgeRef>> succ_;
  std::vector<std::vector<EdgeRef>> pred_;
  std::vector<TaskId> topo_;
  std::size_t num_edges_ = 0;
  double total_weight_ = 0.0;
  bool finalized_ = false;
};

}  // namespace oneport
