#include "graph/task_graph.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace oneport {

TaskId TaskGraph::add_task(double weight, std::string name) {
  OP_REQUIRE(!finalized_, "cannot add tasks to a finalized graph");
  OP_REQUIRE(weight >= 0.0, "task weight must be non-negative");
  const auto id = static_cast<TaskId>(weights_.size());
  weights_.push_back(weight);
  names_.push_back(std::move(name));
  succ_.emplace_back();
  pred_.emplace_back();
  total_weight_ += weight;
  return id;
}

void TaskGraph::add_edge(TaskId src, TaskId dst, double data) {
  OP_REQUIRE(!finalized_, "cannot add edges to a finalized graph");
  check_task(src);
  check_task(dst);
  OP_REQUIRE(src != dst, "self-loop on task " << src);
  OP_REQUIRE(data >= 0.0, "edge data volume must be non-negative");
  OP_REQUIRE(!has_edge(src, dst), "duplicate edge " << src << "->" << dst);
  succ_[src].push_back({dst, data});
  pred_[dst].push_back({src, data});
  ++num_edges_;
}

void TaskGraph::finalize() {
  if (finalized_) return;
  // Kahn's algorithm; doubles as the acyclicity check.
  const std::size_t n = num_tasks();
  std::vector<std::size_t> remaining(n);
  topo_.clear();
  topo_.reserve(n);
  for (std::size_t v = 0; v < n; ++v) {
    remaining[v] = pred_[v].size();
    if (remaining[v] == 0) topo_.push_back(static_cast<TaskId>(v));
  }
  for (std::size_t head = 0; head < topo_.size(); ++head) {
    for (const EdgeRef& e : succ_[topo_[head]]) {
      if (--remaining[e.task] == 0) topo_.push_back(e.task);
    }
  }
  OP_REQUIRE(topo_.size() == n, "task graph contains a cycle");
  finalized_ = true;
}

const std::string& TaskGraph::name(TaskId v) const {
  check_task(v);
  return names_[v];
}

double TaskGraph::edge_data(TaskId src, TaskId dst) const {
  check_task(src);
  check_task(dst);
  for (const EdgeRef& e : succ_[src]) {
    if (e.task == dst) return e.data;
  }
  OP_REQUIRE(false, "no edge " << src << "->" << dst);
  return 0.0;  // unreachable
}

bool TaskGraph::has_edge(TaskId src, TaskId dst) const {
  check_task(src);
  check_task(dst);
  return std::any_of(succ_[src].begin(), succ_[src].end(),
                     [dst](const EdgeRef& e) { return e.task == dst; });
}

std::span<const TaskId> TaskGraph::topological_order() const {
  OP_REQUIRE(finalized_, "graph must be finalized");
  return topo_;
}

std::vector<TaskId> TaskGraph::entry_tasks() const {
  OP_REQUIRE(finalized_, "graph must be finalized");
  std::vector<TaskId> out;
  for (TaskId v = 0; v < num_tasks(); ++v)
    if (pred_[v].empty()) out.push_back(v);
  return out;
}

std::vector<TaskId> TaskGraph::exit_tasks() const {
  OP_REQUIRE(finalized_, "graph must be finalized");
  std::vector<TaskId> out;
  for (TaskId v = 0; v < num_tasks(); ++v)
    if (succ_[v].empty()) out.push_back(v);
  return out;
}

}  // namespace oneport
