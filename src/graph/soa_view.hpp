// Structure-of-arrays view of a finalized TaskGraph.
//
// TaskGraph stores adjacency as vector<vector<EdgeRef>>: every
// successors()/predecessors() call chases a per-node heap block, and the
// EFT engine performs those lookups millions of times per schedule.
// TaskGraphSoA repacks the same data into CSR lanes -- one flat edge
// arena per direction plus (n+1) offsets -- alongside contiguous
// compute-cost and indegree arrays, so the hot loops walk indices over
// dense memory with no bounds checks and no per-node indirection.
//
// The view preserves edge order exactly as the source graph stores it
// (per-node insertion order), so an engine iterating the SoA lanes makes
// bit-identical decisions to one iterating the pointer layout; the
// differential property sweep pins that equivalence.
//
// Which layout the engine walks is a process-wide knob mirroring the
// timeline-impl selection: default_graph_path(), overridable with
// set_default_graph_path() or the ONEPORT_GRAPH environment variable
// ("pointer" or "soa"; soa is the default).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/task_graph.hpp"

namespace oneport {

class TaskGraphSoA {
 public:
  /// Builds the compact view; requires graph.finalized().  O(V + E).
  /// The view copies everything it needs -- it does not alias the graph
  /// and stays valid independently of it.
  explicit TaskGraphSoA(const TaskGraph& graph);

  [[nodiscard]] std::size_t num_tasks() const noexcept {
    return weights_.size();
  }
  [[nodiscard]] std::size_t num_edges() const noexcept {
    return succ_edges_.size();
  }

  /// Unchecked contiguous lanes; `v` must be a valid task id.
  [[nodiscard]] double weight(TaskId v) const noexcept { return weights_[v]; }
  [[nodiscard]] std::uint32_t in_degree(TaskId v) const noexcept {
    return indegree_[v];
  }
  [[nodiscard]] std::span<const EdgeRef> successors(TaskId v) const noexcept {
    return {succ_edges_.data() + succ_off_[v], succ_off_[v + 1] - succ_off_[v]};
  }
  [[nodiscard]] std::span<const EdgeRef> predecessors(
      TaskId v) const noexcept {
    return {pred_edges_.data() + pred_off_[v], pred_off_[v + 1] - pred_off_[v]};
  }

  [[nodiscard]] const std::vector<double>& weights() const noexcept {
    return weights_;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& indegrees() const noexcept {
    return indegree_;
  }

 private:
  std::vector<double> weights_;          // contiguous compute cost
  std::vector<std::uint32_t> indegree_;  // seed for ready counters
  std::vector<std::size_t> succ_off_;    // CSR offsets, size n+1
  std::vector<std::size_t> pred_off_;
  std::vector<EdgeRef> succ_edges_;      // flat edge arenas
  std::vector<EdgeRef> pred_edges_;
};

// ------------------------------------------------ hot-path selection

/// Which adjacency layout the EFT engine's hot loops traverse.
enum class GraphPath {
  kPointer,  ///< TaskGraph's vector-of-vectors + checked accessors
  kSoa,      ///< TaskGraphSoA CSR lanes + unchecked platform reads
};

/// Process-wide default used when an EftEngine is constructed.
/// Initialized once from the ONEPORT_GRAPH environment variable
/// ("pointer" or "soa"); kSoa when unset.
[[nodiscard]] GraphPath default_graph_path() noexcept;
void set_default_graph_path(GraphPath path) noexcept;
[[nodiscard]] const char* graph_path_name(GraphPath path) noexcept;

/// RAII override of the process-wide default, for differential tests and
/// benchmarks running both layouts side by side.
class ScopedGraphPath {
 public:
  explicit ScopedGraphPath(GraphPath path) : previous_(default_graph_path()) {
    set_default_graph_path(path);
  }
  ~ScopedGraphPath() { set_default_graph_path(previous_); }
  ScopedGraphPath(const ScopedGraphPath&) = delete;
  ScopedGraphPath& operator=(const ScopedGraphPath&) = delete;

 private:
  GraphPath previous_;
};

}  // namespace oneport
