#include "graph/dot_export.hpp"

#include <ostream>

#include "util/csv.hpp"
#include "util/error.hpp"

namespace oneport {

void write_dot(std::ostream& os, const TaskGraph& g,
               const DotOptions& options) {
  OP_REQUIRE(g.finalized(), "graph must be finalized");
  const std::size_t shown = std::min(g.num_tasks(), options.max_tasks);
  os << "digraph " << options.graph_name << " {\n";
  os << "  rankdir=TB;\n  node [shape=circle];\n";
  if (shown < g.num_tasks()) {
    os << "  // truncated: showing " << shown << " of " << g.num_tasks()
       << " tasks\n";
  }
  for (TaskId v = 0; v < shown; ++v) {
    os << "  n" << v << " [label=\"";
    if (g.name(v).empty()) {
      os << 'v' << v;
    } else {
      os << g.name(v);
    }
    if (options.show_weights) os << "\\nw=" << csv::format_number(g.weight(v));
    os << "\"];\n";
  }
  for (TaskId v = 0; v < shown; ++v) {
    for (const EdgeRef& e : g.successors(v)) {
      if (e.task >= shown) continue;
      os << "  n" << v << " -> n" << e.task;
      if (options.show_weights)
        os << " [label=\"" << csv::format_number(e.data) << "\"]";
      os << ";\n";
    }
  }
  os << "}\n";
}

}  // namespace oneport
