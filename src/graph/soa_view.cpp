#include "graph/soa_view.hpp"

#include <atomic>
#include <cstdio>
#include <string_view>

#include "util/env_knobs.hpp"
#include "util/error.hpp"

namespace oneport {

TaskGraphSoA::TaskGraphSoA(const TaskGraph& graph) {
  OP_REQUIRE(graph.finalized(), "graph must be finalized");
  const std::size_t n = graph.num_tasks();
  weights_.reserve(n);
  indegree_.reserve(n);
  succ_off_.reserve(n + 1);
  pred_off_.reserve(n + 1);
  succ_edges_.reserve(graph.num_edges());
  pred_edges_.reserve(graph.num_edges());
  succ_off_.push_back(0);
  pred_off_.push_back(0);
  for (TaskId v = 0; v < n; ++v) {
    weights_.push_back(graph.weight(v));
    const std::span<const EdgeRef> succ = graph.successors(v);
    const std::span<const EdgeRef> pred = graph.predecessors(v);
    indegree_.push_back(static_cast<std::uint32_t>(pred.size()));
    succ_edges_.insert(succ_edges_.end(), succ.begin(), succ.end());
    pred_edges_.insert(pred_edges_.end(), pred.begin(), pred.end());
    succ_off_.push_back(succ_edges_.size());
    pred_off_.push_back(pred_edges_.size());
  }
}

// ------------------------------------------------ hot-path selection

namespace {

GraphPath path_from_env() {
  const std::string_view env = env::text(env::Knob::kGraph, "soa");
  if (env == "pointer") return GraphPath::kPointer;
  if (env == "soa") return GraphPath::kSoa;
  // Mirror the ONEPORT_TIMELINE policy: a typo silently selecting the
  // default would invalidate differential runs, so be loud (but do not
  // throw from a static initializer).
  std::fprintf(stderr,
               "oneport: ignoring unknown ONEPORT_GRAPH value '%.*s' "
               "(expected 'pointer' or 'soa'); using soa\n",
               static_cast<int>(env.size()), env.data());
  return GraphPath::kSoa;
}

std::atomic<GraphPath>& default_path_slot() noexcept {
  static std::atomic<GraphPath> slot{path_from_env()};
  return slot;
}

}  // namespace

GraphPath default_graph_path() noexcept {
  return default_path_slot().load(std::memory_order_relaxed);
}

void set_default_graph_path(GraphPath path) noexcept {
  default_path_slot().store(path, std::memory_order_relaxed);
}

const char* graph_path_name(GraphPath path) noexcept {
  return path == GraphPath::kPointer ? "pointer" : "soa";
}

}  // namespace oneport
